//! The PIM-DL serving pipeline: operator partitioning, per-workload
//! auto-tuning, and end-to-end latency/energy estimation.
//!
//! Operator placement follows §5.2 and Fig. 6-(b): the **LUT** operator of
//! every linear layer runs on the PIM modules; the **CCS** operator (a
//! GEMM-shaped distance computation), attention, and the element-wise /
//! normalization operators run on the platform's host.

use std::collections::HashMap;
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use pimdl_sim::cost::estimate_cost;
use pimdl_sim::energy::EnergyReport;
use pimdl_sim::{LutWorkload, Mapping, PlatformConfig};
use pimdl_tuner::tune;

use crate::baseline::HostModel;
use crate::residency::{plan, OperatorFootprint, ResidencyPlan};
use crate::shapes::TransformerShape;
use crate::{EngineError, Result};

/// Serving-time configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServingConfig {
    /// Batch size.
    pub batch: usize,
    /// Sequence length (tokens per sequence / patches per image).
    pub seq_len: usize,
    /// LUT-NN sub-vector length `V`.
    pub v: usize,
    /// LUT-NN centroid count `CT`.
    pub ct: usize,
}

impl ServingConfig {
    /// The paper's default throughput setting: batch 64, seq 512, V = 4,
    /// CT = 16 (§6.3).
    pub fn paper_default() -> Self {
        ServingConfig {
            batch: 64,
            seq_len: 512,
            v: 4,
            ct: 16,
        }
    }

    /// Creates a validated serving configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if any field is zero — degenerate
    /// configs would otherwise surface as divisions by zero or empty
    /// workloads deep inside the cost model.
    pub fn new(batch: usize, seq_len: usize, v: usize, ct: usize) -> Result<Self> {
        let cfg = ServingConfig {
            batch,
            seq_len,
            v,
            ct,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks the configuration for degenerate values.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if any field is zero.
    pub fn validate(&self) -> Result<()> {
        if self.batch == 0 || self.seq_len == 0 || self.v == 0 || self.ct == 0 {
            return Err(EngineError::Config {
                detail: format!("zero field in serving config {self:?}"),
            });
        }
        Ok(())
    }
}

/// Cost of one converted linear operator (aggregated over all layers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// Operator name (QKV / O / FFN1 / FFN2).
    pub name: String,
    /// LUT workload shape.
    pub workload: LutWorkload,
    /// Tuned mapping.
    pub mapping: Mapping,
    /// PIM LUT-operator time across all layers (s).
    pub lut_s: f64,
    /// Host CCS time across all layers (s).
    pub ccs_s: f64,
    /// Host↔PIM bytes across all layers.
    pub host_pim_bytes: u64,
}

/// End-to-end PIM-DL inference report (the Fig. 10/11 quantities).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Total latency (s).
    pub total_s: f64,
    /// PIM LUT-operator latency (s).
    pub lut_s: f64,
    /// Host CCS latency (s).
    pub ccs_s: f64,
    /// Host attention latency (s).
    pub attention_s: f64,
    /// Other host operators (element-wise, norms) latency (s).
    pub other_s: f64,
    /// Per-linear-operator costs.
    pub per_linear: Vec<LinearCost>,
    /// LUT residency plan (which operators' LUTs stay in PIM local memory
    /// and the staging penalty of those that do not fit).
    pub residency: ResidencyPlan,
    /// Energy consumed.
    pub energy: EnergyReport,
}

impl InferenceReport {
    /// Fraction of total latency spent in LUT-NN inference (CCS + LUT) —
    /// the Fig. 11-(a) "LUT" + "CCS" share.
    pub fn lutnn_fraction(&self) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            (self.lut_s + self.ccs_s) / self.total_s
        }
    }

    /// Throughput in sequences per second for the given batch.
    pub fn throughput(&self, batch: usize) -> f64 {
        if self.total_s <= 0.0 {
            0.0
        } else {
            batch as f64 / self.total_s
        }
    }
}

/// The PIM-DL serving engine for one platform.
#[derive(Debug)]
pub struct PimDlEngine {
    platform: PlatformConfig,
    host: HostModel,
    mapping_cache: Mutex<HashMap<LutWorkload, Mapping>>,
}

impl PimDlEngine {
    /// Creates an engine for a platform with its default host.
    pub fn new(platform: PlatformConfig) -> Self {
        let host = HostModel::host_of(&platform);
        PimDlEngine {
            platform,
            host,
            mapping_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The platform this engine serves on.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// The host model running CCS/attention/element-wise operators.
    pub fn host(&self) -> &HostModel {
        &self.host
    }

    /// Returns the tuned mapping for a LUT workload (cached per shape —
    /// "each model need to be tuned only once", §5.3).
    ///
    /// # Errors
    ///
    /// Propagates tuner failures.
    pub fn mapping_for(&self, workload: &LutWorkload) -> Result<Mapping> {
        if let Some(m) = self
            .mapping_cache
            .lock()
            .expect("cache poisoned")
            .get(workload)
        {
            return Ok(*m);
        }
        let result = tune(&self.platform, workload)?;
        self.mapping_cache
            .lock()
            .expect("cache poisoned")
            .insert(*workload, result.mapping);
        Ok(result.mapping)
    }

    /// Estimates end-to-end PIM-DL inference for a model shape.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] if `V` does not divide every linear
    /// input dim, or tuning/simulation errors.
    pub fn serve(&self, shape: &TransformerShape, cfg: &ServingConfig) -> Result<InferenceReport> {
        cfg.validate()?;
        let n = cfg.batch * cfg.seq_len;
        let layers = shape.layers as f64;

        let mut per_linear = Vec::new();
        let mut footprints = Vec::new();
        let mut lut_s = 0.0;
        let mut ccs_s = 0.0;
        let mut host_pim_bytes = 0u64;
        for op in shape.linear_ops() {
            if op.in_dim % cfg.v != 0 {
                return Err(EngineError::Config {
                    detail: format!(
                        "V = {} does not divide {}'s input dim {}",
                        cfg.v, op.name, op.in_dim
                    ),
                });
            }
            let workload = LutWorkload::new(n, op.in_dim / cfg.v, cfg.ct, op.out_dim)?;
            let mapping = self.mapping_for(&workload)?;
            let report = estimate_cost(&self.platform, &workload, &mapping)?;
            // Serving keeps the LUTs resident in PIM memory (distributed
            // once at model load, exactly like the GEMM baseline's
            // weights), so per-inference latency excludes the LUT staging
            // transfer.
            let op_lut_s = report.time.total_resident_s() * layers;

            // CCS on the host: 3·N·H·CT ops (§3.3), streaming the f32
            // activations and writing one index byte per sub-vector. The
            // argmin-shaped kernel sustains only CCS_EFFICIENCY of the
            // host's dense-GEMM throughput.
            let ccs_flops =
                ((3 * n * op.in_dim * cfg.ct) as f64 / crate::baseline::CCS_EFFICIENCY) as u64;
            let ccs_bytes = (n * op.in_dim * 4) as u64 + workload.index_bytes();
            let op_ccs_s = self.host.gemm_time_s(ccs_flops, ccs_bytes) * layers;

            lut_s += op_lut_s;
            ccs_s += op_ccs_s;
            let op_bytes = (report.host_pim_bytes - report.lut_stage_bytes) * shape.layers as u64;
            host_pim_bytes += op_bytes;
            per_linear.push(LinearCost {
                name: op.name.to_string(),
                workload,
                mapping,
                lut_s: op_lut_s,
                ccs_s: op_ccs_s,
                host_pim_bytes: op_bytes,
            });
            footprints.push((op.name, workload, mapping, report));
        }

        // Residency: operators whose LUT tiles do not fit the per-PE local
        // memory must re-stage their tables every inference.
        let footprint_refs: Vec<OperatorFootprint<'_>> = footprints
            .iter()
            .map(|(name, workload, mapping, report)| OperatorFootprint {
                name,
                workload: *workload,
                mapping: *mapping,
                report: *report,
                layers: shape.layers,
            })
            .collect();
        let residency = plan(&self.platform, &footprint_refs);
        lut_s += residency.staging_penalty_s;
        for (entry, (_, _, _, report)) in residency.entries.iter().zip(&footprints) {
            if !entry.resident {
                host_pim_bytes += report.lut_stage_bytes * shape.layers as u64;
            }
        }

        let attn_flops = shape.attention_flops_per_layer(cfg.batch, cfg.seq_len);
        let attn_bytes = (3 * n * shape.hidden) as u64 * 4
            + (cfg.batch * shape.heads * cfg.seq_len * cfg.seq_len) as u64 * 4;
        let attention_s = self.host.gemm_time_s(attn_flops, attn_bytes) * layers;
        let other_s = self
            .host
            .elementwise_time_s(shape.elementwise_bytes_per_layer(cfg.batch, cfg.seq_len))
            * layers;

        let total_s = lut_s + ccs_s + attention_s + other_s;
        let energy = EnergyReport::from_window(
            total_s,
            self.platform.pim_power_w,
            self.host.power_w,
            host_pim_bytes as f64,
            self.platform.transfer_energy_pj_per_byte,
        );
        Ok(InferenceReport {
            total_s,
            lut_s,
            ccs_s,
            attention_s,
            other_s,
            per_linear,
            residency,
            energy,
        })
    }

    /// Extension beyond the paper: estimates serving latency when the host
    /// CCS of the *next* LUT operator overlaps the PIM execution of the
    /// current one (the host and PIM are independent resources, so a
    /// double-buffered index matrix hides the shorter of the two phases).
    ///
    /// The sequential engine of the paper charges `lut + ccs`; pipelined
    /// steady state charges `max(lut, ccs)` per operator, keeping the first
    /// CCS exposed.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`PimDlEngine::serve`].
    pub fn serve_overlapped(
        &self,
        shape: &TransformerShape,
        cfg: &ServingConfig,
    ) -> Result<InferenceReport> {
        let mut report = self.serve(shape, cfg)?;
        let mut pipelined = 0.0;
        let mut first_ccs = f64::INFINITY;
        for lc in &report.per_linear {
            let per_layer_lut = lc.lut_s / shape.layers as f64;
            let per_layer_ccs = lc.ccs_s / shape.layers as f64;
            pipelined += per_layer_lut.max(per_layer_ccs) * shape.layers as f64;
            first_ccs = first_ccs.min(per_layer_ccs);
        }
        if !first_ccs.is_finite() {
            first_ccs = 0.0;
        }
        let linear_s = pipelined + first_ccs + report.residency.staging_penalty_s;
        report.total_s = linear_s + report.attention_s + report.other_s;
        // Attribute the overlapped phase to `lut_s` and keep only the
        // exposed pipeline-fill CCS; the breakdown still sums to the total.
        report.lut_s = pipelined + report.residency.staging_penalty_s;
        report.ccs_s = first_ccs;
        report.energy = EnergyReport::from_window(
            report.total_s,
            self.platform.pim_power_w,
            self.host.power_w,
            report
                .per_linear
                .iter()
                .map(|l| l.host_pim_bytes)
                .sum::<u64>() as f64,
            self.platform.transfer_energy_pj_per_byte,
        );
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{host_inference, pim_gemm_inference};

    fn small_platform() -> PlatformConfig {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 64;
        p
    }

    fn tiny_cfg() -> ServingConfig {
        ServingConfig {
            batch: 4,
            seq_len: 32,
            v: 4,
            ct: 16,
        }
    }

    #[test]
    fn serve_produces_consistent_breakdown() {
        let engine = PimDlEngine::new(small_platform());
        let report = engine
            .serve(&TransformerShape::tiny(), &tiny_cfg())
            .unwrap();
        let sum = report.lut_s + report.ccs_s + report.attention_s + report.other_s;
        assert!((report.total_s - sum).abs() < 1e-12);
        assert_eq!(report.per_linear.len(), 4);
        assert!(report.lut_s > 0.0 && report.ccs_s > 0.0);
        assert!(report.energy.total_j() > 0.0);
        assert!(report.throughput(4) > 0.0);
    }

    #[test]
    fn serve_rejects_bad_config() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let mut cfg = tiny_cfg();
        cfg.v = 0;
        assert!(engine.serve(&shape, &cfg).is_err());
        // V = 5 does not divide hidden 64.
        let mut cfg = tiny_cfg();
        cfg.v = 5;
        assert!(matches!(
            engine.serve(&shape, &cfg),
            Err(EngineError::Config { .. })
        ));
    }

    #[test]
    fn mapping_cache_reuses_tunes() {
        let engine = PimDlEngine::new(small_platform());
        let w = LutWorkload::new(128, 16, 16, 192).unwrap();
        let m1 = engine.mapping_for(&w).unwrap();
        let m2 = engine.mapping_for(&w).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(engine.mapping_cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn lutnn_dominates_latency_like_fig11a() {
        // Fig. 11-(a): LUT-NN inference (CCS + LUT) is ~74–79 % of total.
        let engine = PimDlEngine::new(PlatformConfig::upmem());
        let cfg = ServingConfig {
            batch: 16,
            seq_len: 128,
            v: 4,
            ct: 16,
        };
        let report = engine.serve(&TransformerShape::bert_base(), &cfg).unwrap();
        let frac = report.lutnn_fraction();
        assert!((0.5..1.0).contains(&frac), "LUT-NN fraction {frac}");
    }

    #[test]
    fn pimdl_beats_gemm_on_pim_by_an_order_of_magnitude() {
        // The headline claim (Fig. 10): vs GEMM-based inference on the same
        // PIM hardware, PIM-DL wins by >10×.
        let engine = PimDlEngine::new(PlatformConfig::upmem());
        let shape = TransformerShape::bert_base();
        let cfg = ServingConfig {
            batch: 64,
            seq_len: 512,
            v: 4,
            ct: 16,
        };
        let pimdl = engine.serve(&shape, &cfg).unwrap();
        let gemm = pim_gemm_inference(engine.platform(), &shape, 64, 512);
        let speedup = gemm.total_s() / pimdl.total_s;
        assert!(speedup > 8.0, "speedup over GEMM-on-PIM = {speedup}");
    }

    #[test]
    fn pimdl_beats_cpu_at_large_batch_loses_at_tiny_batch() {
        // Fig. 10 + Fig. 12-(c): PIM-DL outpaces the CPU server at batch 64
        // but loses at very small batches (host↔PIM bandwidth dominates).
        let engine = PimDlEngine::new(PlatformConfig::upmem());
        let shape = TransformerShape::bert_base();

        let big = engine
            .serve(
                &shape,
                &ServingConfig {
                    batch: 64,
                    seq_len: 512,
                    v: 4,
                    ct: 16,
                },
            )
            .unwrap();
        let cpu_big = host_inference(&HostModel::cpu_int8(), &shape, 64, 512, 1);
        let speedup_big = cpu_big.total_s() / big.total_s;
        assert!(speedup_big > 1.0, "batch-64 speedup {speedup_big}");

        let small = engine
            .serve(
                &shape,
                &ServingConfig {
                    batch: 1,
                    seq_len: 128,
                    v: 4,
                    ct: 16,
                },
            )
            .unwrap();
        let cpu_small = host_inference(&HostModel::cpu_int8(), &shape, 1, 128, 1);
        let speedup_small = cpu_small.total_s() / small.total_s;
        assert!(
            speedup_small < speedup_big,
            "small-batch speedup {speedup_small} should trail {speedup_big}"
        );
    }

    #[test]
    fn larger_v_is_faster() {
        // Fig. 12-(a): larger sub-vector length shrinks CB and the LUTs.
        let engine = PimDlEngine::new(PlatformConfig::upmem());
        let shape = TransformerShape::bert_base();
        let t = |v: usize| {
            engine
                .serve(
                    &shape,
                    &ServingConfig {
                        batch: 16,
                        seq_len: 128,
                        v,
                        ct: 16,
                    },
                )
                .unwrap()
                .total_s
        };
        assert!(t(8) < t(2), "V=8 {} should beat V=2 {}", t(8), t(2));
    }

    #[test]
    fn fewer_centroids_is_not_slower() {
        // Fig. 12-(b): smaller CT shrinks LUT footprints.
        let engine = PimDlEngine::new(PlatformConfig::upmem());
        let shape = TransformerShape::bert_base();
        let t = |ct: usize| {
            engine
                .serve(
                    &shape,
                    &ServingConfig {
                        batch: 16,
                        seq_len: 128,
                        v: 4,
                        ct,
                    },
                )
                .unwrap()
                .total_s
        };
        assert!(t(8) <= t(64) * 1.01, "CT=8 {} vs CT=64 {}", t(8), t(64));
    }

    #[test]
    fn overlapped_serving_is_faster_but_bounded() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let cfg = tiny_cfg();
        let seq = engine.serve(&shape, &cfg).unwrap();
        let pipe = engine.serve_overlapped(&shape, &cfg).unwrap();
        assert!(
            pipe.total_s < seq.total_s,
            "pipe {} seq {}",
            pipe.total_s,
            seq.total_s
        );
        // Overlap can hide at most the whole CCS phase.
        assert!(pipe.total_s >= seq.total_s - seq.ccs_s - 1e-12);
        // Breakdown remains consistent.
        let sum = pipe.lut_s + pipe.ccs_s + pipe.attention_s + pipe.other_s;
        assert!((pipe.total_s - sum).abs() < 1e-12);
    }

    #[test]
    fn tight_mram_adds_staging_penalty() {
        let shape = TransformerShape::tiny();
        let cfg = tiny_cfg();
        let roomy = PimDlEngine::new(small_platform());
        let fit = roomy.serve(&shape, &cfg).unwrap();
        assert!(fit.residency.fully_resident());

        let mut p = small_platform();
        p.mram_bytes = 256; // far below any LUT tile
        let cramped = PimDlEngine::new(p);
        let staged = cramped.serve(&shape, &cfg).unwrap();
        assert!(!staged.residency.fully_resident());
        assert!(staged.residency.staging_penalty_s > 0.0);
        assert!(
            staged.total_s > fit.total_s,
            "staged {} should exceed resident {}",
            staged.total_s,
            fit.total_s
        );
    }

    #[test]
    fn paper_default_config() {
        let cfg = ServingConfig::paper_default();
        assert_eq!((cfg.batch, cfg.seq_len, cfg.v, cfg.ct), (64, 512, 4, 16));
    }
}
