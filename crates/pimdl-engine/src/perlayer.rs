//! Per-layer `(V, CT)` serving configurations (DESIGN.md §12.3).
//!
//! [`crate::pipeline::ServingConfig`] quantizes every linear operator with
//! one global `(V, CT)`. The per-layer capacity allocator
//! (`pimdl_tuner::alloc`) instead emits one setting — and optionally a
//! pinned mapping — per operator; [`PerLayerServingConfig`] carries that
//! plan into the engine. Configs load from JSON ([`from_json`]) and are
//! validated against the model shape and platform before serving: an
//! unsupported `V`, a `V` not dividing its operator's input width, or a
//! summed LUT footprint overflowing the capacity budget are all rejected
//! up front rather than surfacing as nonsense deep in the cost model.
//!
//! [`from_json`]: PerLayerServingConfig::from_json

use serde::{Deserialize, Serialize};

use pimdl_sim::cost::estimate_cost;
use pimdl_sim::energy::EnergyReport;
use pimdl_sim::{LutWorkload, Mapping, PlatformConfig};
use pimdl_tuner::alloc::{AllocPlan, SUPPORTED_V};
use pimdl_tuner::space::sub_lut_candidates;

use crate::pipeline::{InferenceReport, LinearCost, PimDlEngine, ServingConfig};
use crate::residency::{plan, OperatorFootprint};
use crate::shapes::TransformerShape;
use crate::{EngineError, Result};

/// Quantization setting of one linear operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpLutConfig {
    /// Operator name; must match the shape's linear op (QKV / O / FFN1 /
    /// FFN2) at the same position.
    pub op: String,
    /// Sub-vector length `V` for this operator.
    pub v: usize,
    /// Centroid count `CT` for this operator.
    pub ct: usize,
    /// Optional pinned mapping (from the capacity allocator). When absent
    /// the engine tunes the operator's workload itself.
    #[serde(default)]
    pub mapping: Option<Mapping>,
}

/// A heterogeneous serving configuration: batch geometry plus one
/// [`OpLutConfig`] per linear operator of the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerLayerServingConfig {
    /// Batch size.
    pub batch: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Per-PE LUT capacity budget in bytes across all layers; `None`
    /// means the platform's full local-memory capacity.
    #[serde(default)]
    pub budget_bytes: Option<usize>,
    /// Per-operator settings, in [`TransformerShape::linear_ops`] order.
    pub ops: Vec<OpLutConfig>,
}

impl PerLayerServingConfig {
    /// Lifts a uniform [`ServingConfig`] into the per-layer form (every
    /// operator gets the same `(V, CT)`, no pinned mappings).
    pub fn uniform(cfg: &ServingConfig, shape: &TransformerShape) -> Self {
        PerLayerServingConfig {
            batch: cfg.batch,
            seq_len: cfg.seq_len,
            budget_bytes: None,
            ops: shape
                .linear_ops()
                .iter()
                .map(|op| OpLutConfig {
                    op: op.name.to_string(),
                    v: cfg.v,
                    ct: cfg.ct,
                    mapping: None,
                })
                .collect(),
        }
    }

    /// Builds a per-layer config from a capacity-allocation plan, pinning
    /// each operator's allocated mapping.
    pub fn from_alloc_plan(
        batch: usize,
        seq_len: usize,
        budget_bytes: usize,
        plan: &AllocPlan,
    ) -> Self {
        PerLayerServingConfig {
            batch,
            seq_len,
            budget_bytes: Some(budget_bytes),
            ops: plan
                .choices
                .iter()
                .map(|c| OpLutConfig {
                    op: c.name.clone(),
                    v: c.v,
                    ct: c.ct,
                    mapping: Some(c.mapping),
                })
                .collect(),
        }
    }

    /// Parses a config from JSON (serde), without validation — call
    /// [`Self::validate`] with the target shape and platform next.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| EngineError::Config {
            detail: format!("per-layer config JSON: {e}"),
        })
    }

    /// Validates the config against a model shape and platform: batch
    /// geometry, operator list, `V ∈ {1, 2, 4, 8, 16}` dividing each input
    /// width, `CT ≥ 2`, and the capacity budget (the summed minimal per-PE
    /// LUT footprint across all layers must fit `budget_bytes`, default
    /// the platform's local memory). A pinned mapping legal at this batch
    /// geometry is charged its exact replication; an illegal one is
    /// ignored (the engine re-tunes when serving).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] naming the first violated rule.
    pub fn validate(&self, shape: &TransformerShape, platform: &PlatformConfig) -> Result<()> {
        if self.batch == 0 || self.seq_len == 0 {
            return Err(EngineError::Config {
                detail: format!(
                    "zero batch geometry (batch {}, seq_len {})",
                    self.batch, self.seq_len
                ),
            });
        }
        let linear_ops = shape.linear_ops();
        if self.ops.len() != linear_ops.len() {
            return Err(EngineError::Config {
                detail: format!(
                    "expected {} per-operator settings, got {}",
                    linear_ops.len(),
                    self.ops.len()
                ),
            });
        }
        let n = self.batch * self.seq_len;
        let budget = self.budget_bytes.unwrap_or(platform.mram_bytes) as u64;
        let mut min_footprint = 0u64;
        for (op, oc) in linear_ops.iter().zip(&self.ops) {
            if oc.op != op.name {
                return Err(EngineError::Config {
                    detail: format!("operator {} configured where {} expected", oc.op, op.name),
                });
            }
            if !SUPPORTED_V.contains(&oc.v) {
                return Err(EngineError::Config {
                    detail: format!(
                        "{}: V = {} not in the supported set {SUPPORTED_V:?}",
                        op.name, oc.v
                    ),
                });
            }
            if op.in_dim % oc.v != 0 {
                return Err(EngineError::Config {
                    detail: format!(
                        "{}: V = {} does not divide input dim {}",
                        op.name, oc.v, op.in_dim
                    ),
                });
            }
            if oc.ct < 2 {
                return Err(EngineError::Config {
                    detail: format!("{}: CT = {} must be at least 2", op.name, oc.ct),
                });
            }
            let workload = LutWorkload::new(n, op.in_dim / oc.v, oc.ct, op.out_dim)?;
            let f_stile = match &oc.mapping {
                // A pin legal at this batch geometry will be served
                // verbatim: charge its exact replication.
                Some(m) if m.validate(&workload, platform).is_ok() => m.f_stile,
                // Otherwise the engine tunes the mapping (a pin minted for
                // a different batch size is dropped, not an error): charge
                // the leanest legal replication so the budget check is a
                // true floor.
                _ => sub_lut_candidates(&workload, platform)
                    .iter()
                    .map(|&(_, f_s)| f_s)
                    .min()
                    .ok_or_else(|| EngineError::Config {
                        detail: format!(
                            "{}: no legal PE partition for ({n}, {}, {}, {}) on {} PEs",
                            op.name, workload.cb, workload.ct, workload.f, platform.num_pes
                        ),
                    })?,
            };
            min_footprint += (workload.cb * workload.ct * f_stile) as u64 * shape.layers as u64;
        }
        if min_footprint > budget {
            return Err(EngineError::Config {
                detail: format!(
                    "capacity budget overflow: minimal per-PE LUT footprint {min_footprint} B \
                     across {} layers exceeds budget {budget} B",
                    shape.layers
                ),
            });
        }
        Ok(())
    }
}

impl PimDlEngine {
    /// Estimates end-to-end inference under a heterogeneous per-layer
    /// configuration — the per-layer counterpart of
    /// [`PimDlEngine::serve`]. Pinned mappings are used verbatim;
    /// operators without one are tuned as usual.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Config`] for configs rejected by
    /// [`PerLayerServingConfig::validate`], or tuning/simulation errors.
    pub fn serve_per_layer(
        &self,
        shape: &TransformerShape,
        cfg: &PerLayerServingConfig,
    ) -> Result<InferenceReport> {
        cfg.validate(shape, self.platform())?;
        let n = cfg.batch * cfg.seq_len;
        let layers = shape.layers as f64;

        let mut per_linear = Vec::new();
        let mut footprints = Vec::new();
        let mut lut_s = 0.0;
        let mut ccs_s = 0.0;
        let mut host_pim_bytes = 0u64;
        for (op, oc) in shape.linear_ops().iter().zip(&cfg.ops) {
            let workload = LutWorkload::new(n, op.in_dim / oc.v, oc.ct, op.out_dim)?;
            // Pins hold only at the batch geometry they were allocated
            // for (Eq. 5 ties the PE partition to N); a re-batched serve
            // falls back to the engine's own tuner.
            let mapping = match oc.mapping {
                Some(m) if m.validate(&workload, self.platform()).is_ok() => m,
                _ => self.mapping_for(&workload)?,
            };
            let report = estimate_cost(self.platform(), &workload, &mapping)?;
            let op_lut_s = report.time.total_resident_s() * layers;

            let ccs_flops =
                ((3 * n * op.in_dim * oc.ct) as f64 / crate::baseline::CCS_EFFICIENCY) as u64;
            let ccs_bytes = (n * op.in_dim * 4) as u64 + workload.index_bytes();
            let op_ccs_s = self.host().gemm_time_s(ccs_flops, ccs_bytes) * layers;

            lut_s += op_lut_s;
            ccs_s += op_ccs_s;
            let op_bytes = (report.host_pim_bytes - report.lut_stage_bytes) * shape.layers as u64;
            host_pim_bytes += op_bytes;
            per_linear.push(LinearCost {
                name: op.name.to_string(),
                workload,
                mapping,
                lut_s: op_lut_s,
                ccs_s: op_ccs_s,
                host_pim_bytes: op_bytes,
            });
            footprints.push((op.name, workload, mapping, report));
        }

        let footprint_refs: Vec<OperatorFootprint<'_>> = footprints
            .iter()
            .map(|(name, workload, mapping, report)| OperatorFootprint {
                name,
                workload: *workload,
                mapping: *mapping,
                report: *report,
                layers: shape.layers,
            })
            .collect();
        let residency = plan(self.platform(), &footprint_refs);
        lut_s += residency.staging_penalty_s;
        for (entry, (_, _, _, report)) in residency.entries.iter().zip(&footprints) {
            if !entry.resident {
                host_pim_bytes += report.lut_stage_bytes * shape.layers as u64;
            }
        }

        let attn_flops = shape.attention_flops_per_layer(cfg.batch, cfg.seq_len);
        let attn_bytes = (3 * n * shape.hidden) as u64 * 4
            + (cfg.batch * shape.heads * cfg.seq_len * cfg.seq_len) as u64 * 4;
        let attention_s = self.host().gemm_time_s(attn_flops, attn_bytes) * layers;
        let other_s = self
            .host()
            .elementwise_time_s(shape.elementwise_bytes_per_layer(cfg.batch, cfg.seq_len))
            * layers;

        let total_s = lut_s + ccs_s + attention_s + other_s;
        let energy = EnergyReport::from_window(
            total_s,
            self.platform().pim_power_w,
            self.host().power_w,
            host_pim_bytes as f64,
            self.platform().transfer_energy_pj_per_byte,
        );
        Ok(InferenceReport {
            total_s,
            lut_s,
            ccs_s,
            attention_s,
            other_s,
            per_linear,
            residency,
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_platform() -> PlatformConfig {
        let mut p = PlatformConfig::upmem();
        p.num_pes = 64;
        p
    }

    fn uniform_cfg(shape: &TransformerShape) -> PerLayerServingConfig {
        PerLayerServingConfig::uniform(
            &ServingConfig {
                batch: 4,
                seq_len: 32,
                v: 4,
                ct: 16,
            },
            shape,
        )
    }

    #[test]
    fn uniform_per_layer_matches_uniform_serve() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let uniform = engine
            .serve(
                &shape,
                &ServingConfig {
                    batch: 4,
                    seq_len: 32,
                    v: 4,
                    ct: 16,
                },
            )
            .unwrap();
        let per_layer = engine
            .serve_per_layer(&shape, &uniform_cfg(&shape))
            .unwrap();
        assert!((uniform.total_s - per_layer.total_s).abs() < 1e-15);
        assert_eq!(uniform.per_linear.len(), per_layer.per_linear.len());
    }

    #[test]
    fn heterogeneous_config_serves() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny(); // hidden 64, ffn 256
        let mut cfg = uniform_cfg(&shape);
        cfg.ops[3].v = 8; // FFN2 reads 256 → cb 32
        cfg.ops[3].ct = 8;
        let report = engine.serve_per_layer(&shape, &cfg).unwrap();
        assert!(report.total_s > 0.0);
        assert_eq!(report.per_linear[3].workload.cb, 32);
        assert_eq!(report.per_linear[3].workload.ct, 8);
    }

    #[test]
    fn rejects_unsupported_v() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let mut cfg = uniform_cfg(&shape);
        cfg.ops[1].v = 3; // not in {1, 2, 4, 8, 16}
        let err = engine.serve_per_layer(&shape, &cfg).unwrap_err();
        assert!(
            err.to_string().contains("not in the supported set"),
            "{err}"
        );
    }

    #[test]
    fn rejects_v_not_dividing_input() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny(); // hidden 64
        let mut cfg = uniform_cfg(&shape);
        // V = 16 is supported, but does not divide a hidden dim of 24.
        let odd = TransformerShape::with_hidden(24, 2);
        cfg.ops[0].v = 16;
        let err = engine.serve_per_layer(&odd, &cfg).unwrap_err();
        assert!(err.to_string().contains("does not divide"), "{err}");
    }

    #[test]
    fn rejects_capacity_budget_overflow() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let mut cfg = uniform_cfg(&shape);
        cfg.budget_bytes = Some(64); // far below any LUT footprint
        let err = engine.serve_per_layer(&shape, &cfg).unwrap_err();
        assert!(
            err.to_string().contains("capacity budget overflow"),
            "{err}"
        );
    }

    #[test]
    fn rejects_tiny_ct_and_zero_geometry() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let mut cfg = uniform_cfg(&shape);
        cfg.ops[2].ct = 1;
        let err = engine.serve_per_layer(&shape, &cfg).unwrap_err();
        assert!(err.to_string().contains("must be at least 2"), "{err}");

        let mut cfg = uniform_cfg(&shape);
        cfg.batch = 0;
        assert!(engine.serve_per_layer(&shape, &cfg).is_err());
    }

    #[test]
    fn rejects_wrong_operator_list() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let mut cfg = uniform_cfg(&shape);
        cfg.ops.pop();
        assert!(engine.serve_per_layer(&shape, &cfg).is_err());

        let mut cfg = uniform_cfg(&shape);
        cfg.ops.swap(0, 1);
        let err = engine.serve_per_layer(&shape, &cfg).unwrap_err();
        assert!(err.to_string().contains("configured where"), "{err}");
    }

    #[test]
    fn json_round_trip_and_rejections() {
        let shape = TransformerShape::tiny();
        let platform = small_platform();
        let cfg = uniform_cfg(&shape);
        let json = serde_json::to_string(&cfg).unwrap();
        let parsed = PerLayerServingConfig::from_json(&json).unwrap();
        assert_eq!(parsed, cfg);
        parsed.validate(&shape, &platform).unwrap();

        // Malformed JSON is a Config error, not a panic.
        assert!(PerLayerServingConfig::from_json("{not json").is_err());

        // A JSON config with V outside the supported set parses but fails
        // validation.
        let mut bad = cfg.clone();
        bad.ops[0].v = 5;
        let bad_json = serde_json::to_string(&bad).unwrap();
        let parsed = PerLayerServingConfig::from_json(&bad_json).unwrap();
        assert!(parsed.validate(&shape, &platform).is_err());
    }

    #[test]
    fn pinned_mapping_is_validated_and_used() {
        let engine = PimDlEngine::new(small_platform());
        let shape = TransformerShape::tiny();
        let mut cfg = uniform_cfg(&shape);
        let n = cfg.batch * cfg.seq_len;
        let op = shape.linear_ops()[0];
        let w = LutWorkload::new(n, op.in_dim / cfg.ops[0].v, cfg.ops[0].ct, op.out_dim).unwrap();
        let tuned = pimdl_tuner::tune(engine.platform(), &w).unwrap().mapping;
        cfg.ops[0].mapping = Some(tuned);
        let report = engine.serve_per_layer(&shape, &cfg).unwrap();
        assert_eq!(report.per_linear[0].mapping, tuned);

        // An illegal pin (wrong PE partition) is dropped — the engine tunes
        // its own mapping instead of serving a mapping that violates Eq. 5.
        let mut broken = tuned;
        broken.n_stile += 1;
        cfg.ops[0].mapping = Some(broken);
        let report = engine.serve_per_layer(&shape, &cfg).unwrap();
        assert_ne!(report.per_linear[0].mapping, broken);
        broken
            .validate(&w, engine.platform())
            .expect_err("broken pin must be illegal");
    }
}
