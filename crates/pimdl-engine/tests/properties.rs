//! Property-based tests for the engine: residency planning invariants and
//! serving-report consistency.

use proptest::prelude::*;

use pimdl_engine::pipeline::{PimDlEngine, ServingConfig};
use pimdl_engine::residency::{plan, OperatorFootprint};
use pimdl_engine::shapes::TransformerShape;
use pimdl_sim::cost::estimate_cost;
use pimdl_sim::{LutWorkload, PlatformConfig};
use pimdl_tuner::tune;

fn footprints(
    platform: &PlatformConfig,
    shapes: &[(usize, usize, usize)],
) -> Vec<OperatorFootprint<'static>> {
    shapes
        .iter()
        .filter_map(|&(n, cb, f)| {
            let workload = LutWorkload::new(n, cb, 16, f).ok()?;
            let mapping = tune(platform, &workload).ok()?.mapping;
            let report = estimate_cost(platform, &workload, &mapping).ok()?;
            Some(OperatorFootprint {
                name: "op",
                workload,
                mapping,
                report,
                layers: 2,
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Residency-plan invariants: resident bytes fit the capacity and sum
    /// correctly; the staging penalty is exactly the non-resident staging
    /// total; shrinking capacity never decreases the penalty.
    #[test]
    fn residency_plan_invariants(cap_kib in 1usize..512) {
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = 16;
        let fps = footprints(&platform, &[(64, 8, 32), (64, 8, 64), (64, 32, 32)]);
        prop_assume!(!fps.is_empty());

        platform.mram_bytes = cap_kib * 1024;
        let p = plan(&platform, &fps);
        prop_assert!(p.used_bytes <= p.capacity_bytes);
        let resident_sum: u64 = p
            .entries
            .iter()
            .filter(|e| e.resident)
            .map(|e| e.per_pe_bytes)
            .sum();
        prop_assert_eq!(resident_sum, p.used_bytes);
        let penalty: f64 = p
            .entries
            .iter()
            .filter(|e| !e.resident)
            .map(|e| e.staging_s)
            .sum();
        prop_assert!((penalty - p.staging_penalty_s).abs() < 1e-15);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p.utilization()));

        // Half the capacity ⇒ penalty does not decrease.
        platform.mram_bytes = cap_kib * 512;
        let tighter = plan(&platform, &fps);
        prop_assert!(tighter.staging_penalty_s >= p.staging_penalty_s - 1e-15);
    }

    /// Serving-report consistency across arbitrary small configurations:
    /// components sum to the total, all components are positive, and energy
    /// scales with latency.
    #[test]
    fn serve_report_consistency(
        batch in 1usize..6,
        seq_pow in 3u32..6,
        v in prop::sample::select(vec![2usize, 4, 8]),
        ct in prop::sample::select(vec![8usize, 16]),
    ) {
        let mut platform = PlatformConfig::upmem();
        platform.num_pes = 64;
        let engine = PimDlEngine::new(platform);
        let shape = TransformerShape::tiny();
        let cfg = ServingConfig {
            batch,
            seq_len: 1 << seq_pow,
            v,
            ct,
        };
        let Ok(report) = engine.serve(&shape, &cfg) else {
            return Ok(()); // V may not divide a dim for this combo
        };
        let sum = report.lut_s + report.ccs_s + report.attention_s + report.other_s;
        prop_assert!((report.total_s - sum).abs() < 1e-12);
        prop_assert!(report.lut_s > 0.0 && report.ccs_s > 0.0);
        prop_assert!(report.energy.pim_j > 0.0);
        // PIM energy is static power × total time exactly.
        let expected_pim = engine.platform().pim_power_w * report.total_s;
        prop_assert!((report.energy.pim_j - expected_pim).abs() < 1e-9);
        prop_assert_eq!(report.per_linear.len(), 4);
    }
}
